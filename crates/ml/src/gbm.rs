//! Gradient-boosted decision trees (softmax multiclass boosting).
//!
//! The ECONOMY-K reference implementation uses XGBoost as its per-time-
//! point base classifier; this module provides the closest from-scratch
//! equivalent (DESIGN.md, Substitution 2): K parallel regression-tree
//! ensembles fit the negative softmax gradient (`y_k − p_k`) at a
//! shrinkage-scaled learning rate — classic multiclass gradient boosting
//! with variance-reduction splits.

use crate::classifier::{validate_training, Classifier};
use crate::error::MlError;
use crate::linalg::Matrix;
use crate::logistic::softmax;

/// Hyper-parameters for [`GradientBoosting`].
#[derive(Debug, Clone)]
pub struct GbmConfig {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for GbmConfig {
    fn default() -> Self {
        GbmConfig {
            n_rounds: 40,
            learning_rate: 0.2,
            max_depth: 3,
            min_samples_split: 4,
        }
    }
}

/// Regression-tree node (variance-reduction CART).
#[derive(Debug, Clone)]
enum RNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A small regression tree fit to residuals.
#[derive(Debug, Clone)]
struct RegressionTree {
    nodes: Vec<RNode>,
}

impl RegressionTree {
    fn fit(
        x: &Matrix,
        targets: &[f64],
        idx: Vec<usize>,
        max_depth: usize,
        min_split: usize,
    ) -> RegressionTree {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.build(x, targets, idx, 0, max_depth, min_split);
        tree
    }

    fn mean(targets: &[f64], idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64
    }

    fn build(
        &mut self,
        x: &Matrix,
        targets: &[f64],
        idx: Vec<usize>,
        depth: usize,
        max_depth: usize,
        min_split: usize,
    ) -> usize {
        let value = Self::mean(targets, &idx);
        if depth >= max_depth || idx.len() < min_split {
            self.nodes.push(RNode::Leaf { value });
            return self.nodes.len() - 1;
        }
        // Best split by squared-error reduction.
        let parent_sse: f64 = idx.iter().map(|&i| (targets[i] - value).powi(2)).sum();
        if parent_sse < 1e-12 {
            self.nodes.push(RNode::Leaf { value });
            return self.nodes.len() - 1;
        }
        let mut best: Option<(usize, f64, f64)> = None;
        let mut sorted = idx.clone();
        for f in 0..x.cols() {
            sorted.sort_unstable_by(|&a, &b| {
                x[(a, f)]
                    .partial_cmp(&x[(b, f)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let total_sum: f64 = idx.iter().map(|&i| targets[i]).sum();
            let total_sq: f64 = idx.iter().map(|&i| targets[i] * targets[i]).sum();
            for w in 0..sorted.len() - 1 {
                let t = targets[sorted[w]];
                left_sum += t;
                left_sq += t * t;
                let cur = x[(sorted[w], f)];
                let next = x[(sorted[w + 1], f)];
                if next <= cur {
                    continue;
                }
                let nl = (w + 1) as f64;
                let nr = (sorted.len() - w - 1) as f64;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                let gain = parent_sse - sse;
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, (cur + next) / 2.0, gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            self.nodes.push(RNode::Leaf { value });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.into_iter().partition(|&i| x[(i, feature)] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(RNode::Leaf { value });
            return self.nodes.len() - 1;
        }
        let left = self.build(x, targets, left_idx, depth + 1, max_depth, min_split);
        let right = self.build(x, targets, right_idx, depth + 1, max_depth, min_split);
        self.nodes.push(RNode::Split {
            feature,
            threshold,
            left,
            right,
        });
        self.nodes.len() - 1
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let mut node = self.nodes.len() - 1;
        loop {
            match &self.nodes[node] {
                RNode::Leaf { value } => return *value,
                RNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Multiclass gradient-boosted trees.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    config: GbmConfig,
    /// `rounds × n_classes` trees.
    trees: Vec<Vec<RegressionTree>>,
    /// Initial per-class log-prior scores.
    base_scores: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

impl GradientBoosting {
    /// Untrained model.
    pub fn new(config: GbmConfig) -> Self {
        GradientBoosting {
            config,
            trees: Vec::new(),
            base_scores: Vec::new(),
            n_features: 0,
            n_classes: 0,
        }
    }

    /// Untrained model with defaults (40 rounds, depth 3, η = 0.2).
    pub fn with_defaults() -> Self {
        Self::new(GbmConfig::default())
    }

    /// Number of fitted boosting rounds.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    fn raw_scores(&self, x: &[f64]) -> Vec<f64> {
        let mut scores = self.base_scores.clone();
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                scores[c] += self.config.learning_rate * tree.predict(x);
            }
        }
        scores
    }
}

impl Classifier for GradientBoosting {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_training(x, y, n_classes)?;
        if self.config.n_rounds == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_rounds",
                message: "must be positive".into(),
            });
        }
        let n = x.rows();
        self.n_features = x.cols();
        self.n_classes = n_classes;
        // Base scores: smoothed class log-priors.
        let mut counts = vec![1.0f64; n_classes];
        for &l in y {
            counts[l] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        self.base_scores = counts.iter().map(|&c| (c / total).ln()).collect();

        // Running raw scores per sample.
        let mut scores: Vec<Vec<f64>> = vec![self.base_scores.clone(); n];
        self.trees.clear();
        for _ in 0..self.config.n_rounds {
            let mut round = Vec::with_capacity(n_classes);
            // Per-class negative gradient: y_k − p_k.
            let probs: Vec<Vec<f64>> = scores.iter().map(|s| softmax(s)).collect();
            for c in 0..n_classes {
                let targets: Vec<f64> = (0..n)
                    .map(|i| (if y[i] == c { 1.0 } else { 0.0 }) - probs[i][c])
                    .collect();
                let tree = RegressionTree::fit(
                    x,
                    &targets,
                    (0..n).collect(),
                    self.config.max_depth,
                    self.config.min_samples_split,
                );
                for (i, s) in scores.iter_mut().enumerate() {
                    s[c] += self.config.learning_rate * tree.predict(x.row(i));
                }
                round.push(tree);
            }
            self.trees.push(round);
        }
        Ok(())
    }

    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        Ok(softmax(&self.raw_scores(x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rings() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let a = i as f64 * 0.21;
            rows.push(vec![0.3 * a.cos(), 0.3 * a.sin()]);
            y.push(0);
            rows.push(vec![2.0 * a.cos(), 2.0 * a.sin()]);
            y.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn fits_nonlinear_rings() {
        let (x, y) = rings();
        let mut g = GradientBoosting::with_defaults();
        g.fit(&x, &y, 2).unwrap();
        let acc = g
            .predict_batch(&x)
            .unwrap()
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn three_classes() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0, 0.0), (4.0, 0.0), (2.0, 4.0)].iter().enumerate() {
            for i in 0..15 {
                let e = (i as f64 * 0.41).sin() * 0.4;
                rows.push(vec![cx + e, cy - e]);
                y.push(c);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut g = GradientBoosting::with_defaults();
        g.fit(&x, &y, 3).unwrap();
        let acc = g
            .predict_batch(&x)
            .unwrap()
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_calibratedish() {
        let (x, y) = rings();
        let mut g = GradientBoosting::with_defaults();
        g.fit(&x, &y, 2).unwrap();
        let p = g.predict_proba(&[0.0, 0.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            p[0] > 0.8,
            "inner point should be confidently class 0: {p:?}"
        );
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let (x, y) = rings();
        let mut small = GradientBoosting::new(GbmConfig {
            n_rounds: 3,
            ..GbmConfig::default()
        });
        let mut large = GradientBoosting::new(GbmConfig {
            n_rounds: 60,
            ..GbmConfig::default()
        });
        small.fit(&x, &y, 2).unwrap();
        large.fit(&x, &y, 2).unwrap();
        let acc = |g: &GradientBoosting| {
            g.predict_batch(&x)
                .unwrap()
                .iter()
                .zip(&y)
                .filter(|(p, t)| p == t)
                .count() as f64
                / y.len() as f64
        };
        assert!(acc(&large) >= acc(&small));
    }

    #[test]
    fn error_paths() {
        let g = GradientBoosting::with_defaults();
        assert!(matches!(g.predict_proba(&[0.0]), Err(MlError::NotFitted)));
        let (x, y) = rings();
        let mut g = GradientBoosting::new(GbmConfig {
            n_rounds: 0,
            ..GbmConfig::default()
        });
        assert!(g.fit(&x, &y, 2).is_err());
        let mut g = GradientBoosting::with_defaults();
        g.fit(&x, &y, 2).unwrap();
        assert!(g.predict_proba(&[1.0]).is_err());
        assert!(g.n_rounds() > 0);
    }
}
