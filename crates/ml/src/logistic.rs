//! Multinomial (softmax) logistic regression trained with mini-batch Adam.
//!
//! This is the linear classifier behind WEASEL, TEASER and ECEC in the
//! reference implementations (sklearn's `LogisticRegression` / liblinear).
//! Dense weights, L2 regularisation, early stopping on training loss.

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::classifier::{validate_training, Classifier};
use crate::error::MlError;
use crate::linalg::Matrix;

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    /// L2 penalty strength (applied to weights, not biases).
    pub l2: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Maximum passes over the training data.
    pub max_epochs: usize,
    /// Mini-batch size (clamped to the sample count).
    pub batch_size: usize,
    /// Stop when the epoch loss improves by less than this.
    pub tolerance: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            l2: 1e-4,
            learning_rate: 0.05,
            max_epochs: 200,
            batch_size: 64,
            tolerance: 1e-5,
            seed: 7,
        }
    }
}

/// Multinomial logistic regression classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    config: LogisticConfig,
    /// `n_classes × n_features` weight matrix.
    weights: Option<Matrix>,
    /// Per-class bias.
    bias: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

impl LogisticRegression {
    /// Creates an untrained model with the given hyper-parameters.
    pub fn new(config: LogisticConfig) -> Self {
        LogisticRegression {
            config,
            weights: None,
            bias: Vec::new(),
            n_features: 0,
            n_classes: 0,
        }
    }

    /// Untrained model with default hyper-parameters.
    pub fn with_defaults() -> Self {
        Self::new(LogisticConfig::default())
    }

    /// Number of classes seen at fit time (0 before fit).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn logits(&self, x: &[f64], weights: &Matrix) -> Vec<f64> {
        let mut z = self.bias.clone();
        for (c, zc) in z.iter_mut().enumerate() {
            *zc += crate::linalg::dot(weights.row(c), x);
        }
        z
    }

    /// Serializes hyper-parameters and fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.f64(self.config.l2);
        e.f64(self.config.learning_rate);
        e.usize(self.config.max_epochs);
        e.usize(self.config.batch_size);
        e.f64(self.config.tolerance);
        e.u64(self.config.seed);
        match &self.weights {
            Some(w) => {
                e.bool(true);
                w.encode_state(e);
            }
            None => e.bool(false),
        }
        e.f64s(&self.bias);
        e.usize(self.n_features);
        e.usize(self.n_classes);
    }

    /// Reconstructs a model written by
    /// [`LogisticRegression::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let config = LogisticConfig {
            l2: d.f64()?,
            learning_rate: d.f64()?,
            max_epochs: d.usize()?,
            batch_size: d.usize()?,
            tolerance: d.f64()?,
            seed: d.u64()?,
        };
        let weights = if d.bool()? {
            Some(Matrix::decode_state(d)?)
        } else {
            None
        };
        Ok(LogisticRegression {
            config,
            weights,
            bias: d.f64s()?,
            n_features: d.usize()?,
            n_classes: d.usize()?,
        })
    }
}

/// Numerically stable softmax (subtracts the max logit).
pub fn softmax(z: &[f64]) -> Vec<f64> {
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return vec![1.0 / z.len() as f64; z.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for LogisticRegression {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_training(x, y, n_classes)?;
        if n_classes < 2 {
            return Err(MlError::InvalidLabels(
                "logistic regression needs at least 2 classes".into(),
            ));
        }
        let (n, d) = (x.rows(), x.cols());
        self.n_features = d;
        self.n_classes = n_classes;
        self.bias = vec![0.0; n_classes];
        let mut weights = Matrix::zeros(n_classes, d);

        // Adam state.
        let mut m_w = Matrix::zeros(n_classes, d);
        let mut v_w = Matrix::zeros(n_classes, d);
        let mut m_b = vec![0.0; n_classes];
        let mut v_b = vec![0.0; n_classes];
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut step = 0usize;

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let batch = self.config.batch_size.max(1).min(n);
        let mut prev_loss = f64::INFINITY;

        let mut grad_w = Matrix::zeros(n_classes, d);
        let mut grad_b = vec![0.0; n_classes];

        for _epoch in 0..self.config.max_epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                // Zero gradients.
                for c in 0..n_classes {
                    for g in grad_w.row_mut(c) {
                        *g = 0.0;
                    }
                    grad_b[c] = 0.0;
                }
                for &i in chunk {
                    let xi = x.row(i);
                    let p = softmax(&self.logits(xi, &weights));
                    epoch_loss -= p[y[i]].max(1e-300).ln();
                    for c in 0..n_classes {
                        let err = p[c] - if c == y[i] { 1.0 } else { 0.0 };
                        if err != 0.0 {
                            crate::linalg::axpy(err, xi, grad_w.row_mut(c));
                            grad_b[c] += err;
                        }
                    }
                }
                let scale = 1.0 / chunk.len() as f64;
                step += 1;
                let bc1 = 1.0 - beta1.powi(step as i32);
                let bc2 = 1.0 - beta2.powi(step as i32);
                for c in 0..n_classes {
                    let l2 = self.config.l2;
                    let w_row_ptr = weights.row(c).to_vec();
                    let g_row = grad_w.row_mut(c);
                    for (j, g) in g_row.iter_mut().enumerate() {
                        *g = *g * scale + l2 * w_row_ptr[j];
                    }
                    for j in 0..d {
                        let g = g_row[j];
                        let mw = &mut m_w[(c, j)];
                        *mw = beta1 * *mw + (1.0 - beta1) * g;
                        let vw = &mut v_w[(c, j)];
                        *vw = beta2 * *vw + (1.0 - beta2) * g * g;
                        let mhat = m_w[(c, j)] / bc1;
                        let vhat = v_w[(c, j)] / bc2;
                        weights[(c, j)] -= self.config.learning_rate * mhat / (vhat.sqrt() + eps);
                    }
                    let gb = grad_b[c] * scale;
                    m_b[c] = beta1 * m_b[c] + (1.0 - beta1) * gb;
                    v_b[c] = beta2 * v_b[c] + (1.0 - beta2) * gb * gb;
                    self.bias[c] -=
                        self.config.learning_rate * (m_b[c] / bc1) / ((v_b[c] / bc2).sqrt() + eps);
                }
            }
            epoch_loss /= n as f64;
            if (prev_loss - epoch_loss).abs() < self.config.tolerance {
                break;
            }
            prev_loss = epoch_loss;
        }
        self.weights = Some(weights);
        Ok(())
    }

    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        let weights = self.weights.as_ref().ok_or(MlError::NotFitted)?;
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        Ok(softmax(&self.logits(x, weights)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::argmax;

    fn blob_data() -> (Matrix, Vec<usize>) {
        // Two well-separated 2-D blobs.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.1;
            rows.push(vec![1.0 + t.sin() * 0.1, 1.0 + t.cos() * 0.1]);
            y.push(0);
            rows.push(vec![-1.0 - t.sin() * 0.1, -1.0 + t.cos() * 0.1]);
            y.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_two_blobs() {
        let (x, y) = blob_data();
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y, 2).unwrap();
        let preds = lr.predict_batch(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert_eq!(correct, y.len(), "should fit separable data perfectly");
        let p = lr.predict_proba(&[1.0, 1.0]).unwrap();
        assert!(p[0] > 0.9);
    }

    #[test]
    fn three_class_problem() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let centers = [(0.0, 3.0), (3.0, -1.5), (-3.0, -1.5)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..15 {
                let j = i as f64 * 0.41;
                rows.push(vec![cx + j.sin() * 0.3, cy + j.cos() * 0.3]);
                y.push(c);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y, 3).unwrap();
        let acc = lr
            .predict_batch(&x)
            .unwrap()
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "3-class accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = blob_data();
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y, 2).unwrap();
        let p = lr.predict_proba(&[0.3, -0.2]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[0]);
        let p = softmax(&[-1000.0, -1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unfitted_and_mismatched_errors() {
        let lr = LogisticRegression::with_defaults();
        assert!(matches!(
            lr.predict_proba(&[1.0]).unwrap_err(),
            MlError::NotFitted
        ));
        let (x, y) = blob_data();
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y, 2).unwrap();
        assert!(matches!(
            lr.predict_proba(&[1.0]).unwrap_err(),
            MlError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn single_class_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut lr = LogisticRegression::with_defaults();
        assert!(lr.fit(&x, &[0, 0], 1).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blob_data();
        let mut a = LogisticRegression::with_defaults();
        let mut b = LogisticRegression::with_defaults();
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(
            a.predict_proba(&[0.5, 0.5]).unwrap(),
            b.predict_proba(&[0.5, 0.5]).unwrap()
        );
    }

    #[test]
    fn argmax_of_probs_matches_predict() {
        let (x, y) = blob_data();
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y, 2).unwrap();
        let p = lr.predict_proba(x.row(0)).unwrap();
        assert_eq!(lr.predict(x.row(0)).unwrap(), argmax(&p));
    }
}
