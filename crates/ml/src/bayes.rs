//! Gaussian naive Bayes — a cheap, calibrated per-time-point base learner.
//!
//! ECONOMY-K trains one classifier per time-point per variable; a model
//! that fits in one pass over the data keeps that tractable. Variances are
//! floored at a small epsilon so constant features don't blow up the
//! likelihood.

use crate::classifier::{validate_training, Classifier};
use crate::error::MlError;
use crate::linalg::Matrix;
use crate::logistic::softmax;

/// Gaussian naive Bayes classifier.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    /// Per-class log prior.
    log_prior: Vec<f64>,
    /// Per-class per-feature mean (`n_classes × d`).
    means: Vec<Vec<f64>>,
    /// Per-class per-feature variance.
    vars: Vec<Vec<f64>>,
    n_features: usize,
    fitted: bool,
}

/// Variance floor preventing degenerate likelihoods on constant features.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// Untrained model.
    pub fn new() -> Self {
        GaussianNb::default()
    }

    /// Serializes the fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.f64s(&self.log_prior);
        e.f64_rows(&self.means);
        e.f64_rows(&self.vars);
        e.usize(self.n_features);
        e.bool(self.fitted);
    }

    /// Reconstructs a model written by [`GaussianNb::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        Ok(GaussianNb {
            log_prior: d.f64s()?,
            means: d.f64_rows()?,
            vars: d.f64_rows()?,
            n_features: d.usize()?,
            fitted: d.bool()?,
        })
    }
}

impl Classifier for GaussianNb {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_training(x, y, n_classes)?;
        let d = x.cols();
        let mut counts = vec![0usize; n_classes];
        let mut sums = vec![vec![0.0; d]; n_classes];
        let mut sumsqs = vec![vec![0.0; d]; n_classes];
        for (i, &c) in y.iter().enumerate() {
            counts[c] += 1;
            let row = x.row(i);
            for (j, &v) in row.iter().enumerate() {
                sums[c][j] += v;
                sumsqs[c][j] += v * v;
            }
        }
        let n = x.rows() as f64;
        // Laplace-smoothed priors keep absent classes representable.
        self.log_prior = counts
            .iter()
            .map(|&c| ((c as f64 + 1.0) / (n + n_classes as f64)).ln())
            .collect();
        self.means = vec![vec![0.0; d]; n_classes];
        self.vars = vec![vec![1.0; d]; n_classes];
        // Pooled variance fallback for classes absent from the sample.
        let mut pooled_mean = vec![0.0; d];
        let mut pooled_sq = vec![0.0; d];
        for i in 0..x.rows() {
            for (j, &v) in x.row(i).iter().enumerate() {
                pooled_mean[j] += v;
                pooled_sq[j] += v * v;
            }
        }
        for j in 0..d {
            pooled_mean[j] /= n;
            pooled_sq[j] = (pooled_sq[j] / n - pooled_mean[j] * pooled_mean[j]).max(VAR_FLOOR);
        }
        for c in 0..n_classes {
            if counts[c] == 0 {
                self.means[c] = pooled_mean.clone();
                self.vars[c] = pooled_sq.clone();
                continue;
            }
            let nc = counts[c] as f64;
            for j in 0..d {
                let m = sums[c][j] / nc;
                self.means[c][j] = m;
                self.vars[c][j] = (sumsqs[c][j] / nc - m * m).max(VAR_FLOOR);
            }
        }
        self.n_features = d;
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let mut log_post = self.log_prior.clone();
        for (c, lp) in log_post.iter_mut().enumerate() {
            for (j, &v) in x.iter().enumerate() {
                let var = self.vars[c][j];
                let diff = v - self.means[c][j];
                *lp += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
            }
        }
        Ok(softmax(&log_post))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_shifted_gaussians() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let eps = (i as f64 * 0.7).sin() * 0.3;
            rows.push(vec![0.0 + eps, 1.0 - eps]);
            y.push(0);
            rows.push(vec![5.0 + eps, -3.0 + eps]);
            y.push(1);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y, 2).unwrap();
        assert_eq!(nb.predict(&[0.1, 0.9]).unwrap(), 0);
        assert_eq!(nb.predict(&[4.8, -2.9]).unwrap(), 1);
        let p = nb.predict_proba(&[0.1, 0.9]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.99);
    }

    #[test]
    fn constant_feature_does_not_explode() {
        let x = Matrix::from_rows(&[
            vec![1.0, 7.0],
            vec![1.0, 7.5],
            vec![1.0, -7.0],
            vec![1.0, -7.5],
        ])
        .unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &[0, 0, 1, 1], 2).unwrap();
        let p = nb.predict_proba(&[1.0, 7.2]).unwrap();
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[0] > 0.5);
    }

    #[test]
    fn absent_class_gets_pooled_stats_and_low_prior() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![5.0], vec![5.1]]).unwrap();
        let mut nb = GaussianNb::new();
        // Three classes declared, class 2 never appears.
        nb.fit(&x, &[0, 0, 1, 1], 3).unwrap();
        let p = nb.predict_proba(&[0.05]).unwrap();
        assert_eq!(p.len(), 3);
        assert!(p[0] > p[2], "seen class must beat unseen class");
    }

    #[test]
    fn priors_influence_ties() {
        // Same feature distribution, imbalanced priors: majority wins.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &[0, 0, 0, 1], 2).unwrap();
        assert_eq!(nb.predict(&[0.0]).unwrap(), 0);
    }

    #[test]
    fn error_paths() {
        let nb = GaussianNb::new();
        assert!(matches!(
            nb.predict_proba(&[1.0]).unwrap_err(),
            MlError::NotFitted
        ));
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &[0], 1).unwrap();
        assert!(matches!(
            nb.predict_proba(&[1.0]).unwrap_err(),
            MlError::DimensionMismatch { .. }
        ));
    }
}
