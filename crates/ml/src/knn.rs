//! 1-nearest-neighbour primitives with incremental prefix distances.
//!
//! ECTS needs, for *every* prefix length `l`, the nearest neighbour of
//! every training series among the others. Recomputing distances per
//! prefix would cost `O(N² L²)`; accumulating squared distances one
//! time-point at a time gives the whole table in `O(N² L)`.

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
use crate::error::MlError;

/// Per-prefix-length nearest-neighbour table over a training set.
#[derive(Debug, Clone)]
pub struct PrefixNnTable {
    /// `nn[l-1][i]` = index of the 1-NN of series `i` at prefix length `l`.
    nn: Vec<Vec<usize>>,
    n: usize,
    len: usize,
}

impl PrefixNnTable {
    /// Builds the table for equal-length univariate series.
    ///
    /// # Errors
    /// * [`MlError::EmptyTrainingSet`] with fewer than 2 series or empty
    ///   series;
    /// * [`MlError::DimensionMismatch`] on ragged lengths.
    pub fn build(series: &[&[f64]]) -> Result<PrefixNnTable, MlError> {
        let n = series.len();
        if n < 2 {
            return Err(MlError::EmptyTrainingSet);
        }
        let len = series[0].len();
        if len == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        for s in series {
            if s.len() != len {
                return Err(MlError::DimensionMismatch {
                    expected: len,
                    got: s.len(),
                });
            }
        }
        // acc[i*n + j] accumulates the squared distance of the prefix so far.
        let mut acc = vec![0.0f64; n * n];
        let mut nn = Vec::with_capacity(len);
        for t in 0..len {
            for i in 0..n {
                let xi = series[i][t];
                // Only the upper triangle is computed; mirror on read.
                for j in (i + 1)..n {
                    let d = xi - series[j][t];
                    acc[i * n + j] += d * d;
                }
            }
            let mut nn_t = vec![0usize; n];
            for (i, slot) in nn_t.iter_mut().enumerate() {
                let mut best = usize::MAX;
                let mut best_d = f64::INFINITY;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let d = if i < j {
                        acc[i * n + j]
                    } else {
                        acc[j * n + i]
                    };
                    // NaN distances (NaN/Inf in the input) rank worst
                    // instead of poisoning every comparison and leaving
                    // `best` unset.
                    let d = if d.is_nan() { f64::INFINITY } else { d };
                    // Strict < keeps the lowest index on ties, matching the
                    // deterministic tie-break used throughout the framework.
                    if best == usize::MAX || d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
                *slot = best;
            }
            nn.push(nn_t);
            let _ = t;
        }
        Ok(PrefixNnTable { nn, n, len })
    }

    /// Number of series.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Full series length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table covers no time points (impossible after
    /// construction; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// 1-NN of series `i` at prefix length `l` (1-based length).
    ///
    /// # Panics
    /// When `l` is 0, `l > len`, or `i >= n` (programming errors).
    pub fn nn(&self, l: usize, i: usize) -> usize {
        assert!(l >= 1 && l <= self.len, "prefix length {l} out of range");
        self.nn[l - 1][i]
    }

    /// Reverse-nearest-neighbour sets at prefix length `l`:
    /// `rnn[i]` lists every series whose 1-NN is `i`.
    pub fn rnn_sets(&self, l: usize) -> Vec<Vec<usize>> {
        let mut rnn = vec![Vec::new(); self.n];
        for (j, &target) in self.nn[l - 1].iter().enumerate() {
            rnn[target].push(j);
        }
        rnn
    }
}

/// Nearest training series to `query` when both are truncated to
/// `query.len()` points. Returns `(index, squared distance)`.
///
/// # Errors
/// * [`MlError::EmptyTrainingSet`] with no training series or empty query;
/// * [`MlError::DimensionMismatch`] when some training series is shorter
///   than the query.
pub fn nearest_prefix(train: &[&[f64]], query: &[f64]) -> Result<(usize, f64), MlError> {
    if train.is_empty() || query.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    let l = query.len();
    let mut best = (0usize, f64::INFINITY);
    for (i, s) in train.iter().enumerate() {
        if s.len() < l {
            return Err(MlError::DimensionMismatch {
                expected: l,
                got: s.len(),
            });
        }
        let mut d = 0.0;
        for (a, b) in s[..l].iter().zip(query) {
            d += (a - b) * (a - b);
            if d >= best.1 {
                break; // early abandon
            }
        }
        if d < best.1 {
            best = (i, d);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nn_table_matches_brute_force() {
        let series: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0, 0.0, 9.0],
            vec![0.1, 0.1, 0.1, 0.1],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![5.1, 4.9, 5.2, 5.0],
        ];
        let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let table = PrefixNnTable::build(&refs).unwrap();
        for l in 1..=4 {
            for i in 0..4 {
                // Brute force.
                let mut best = (usize::MAX, f64::INFINITY);
                for j in 0..4 {
                    if j == i {
                        continue;
                    }
                    let d: f64 = (0..l).map(|t| (series[i][t] - series[j][t]).powi(2)).sum();
                    if d < best.1 {
                        best = (j, d);
                    }
                }
                assert_eq!(table.nn(l, i), best.0, "l={l} i={i}");
            }
        }
    }

    #[test]
    fn nn_flips_as_prefix_grows() {
        // Series 0 starts near series 1 but ends near series 2.
        let s0 = vec![0.0, 0.0, 10.0, 10.0];
        let s1 = vec![0.1, 0.1, 0.1, 0.1];
        let s2 = vec![9.0, 9.0, 10.0, 10.0];
        let refs: Vec<&[f64]> = vec![&s0, &s1, &s2];
        let table = PrefixNnTable::build(&refs).unwrap();
        assert_eq!(table.nn(1, 0), 1);
        assert_eq!(table.nn(4, 0), 2);
    }

    #[test]
    fn rnn_sets_invert_nn() {
        let s0 = vec![0.0, 0.0];
        let s1 = vec![0.1, 0.1];
        let s2 = vec![9.0, 9.0];
        let refs: Vec<&[f64]> = vec![&s0, &s1, &s2];
        let table = PrefixNnTable::build(&refs).unwrap();
        let rnn = table.rnn_sets(2);
        // 0 and 1 are each other's NN; 2's NN is 1 (closer than 0).
        assert!(rnn[0].contains(&1));
        assert!(rnn[1].contains(&0));
        // Membership count equals n (every series has exactly one NN).
        assert_eq!(rnn.iter().map(|r| r.len()).sum::<usize>(), 3);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let s0 = vec![1.0];
        let refs: Vec<&[f64]> = vec![&s0];
        assert!(PrefixNnTable::build(&refs).is_err());
        let a: Vec<f64> = vec![];
        let b: Vec<f64> = vec![];
        let refs: Vec<&[f64]> = vec![&a, &b];
        assert!(PrefixNnTable::build(&refs).is_err());
        let c = vec![1.0, 2.0];
        let d = vec![1.0];
        let refs: Vec<&[f64]> = vec![&c, &d];
        assert!(PrefixNnTable::build(&refs).is_err());
    }

    #[test]
    fn nan_series_rank_worst_instead_of_breaking_the_table() {
        // A NaN anywhere used to leave `best` unset (every comparison
        // false), making rnn_sets index out of bounds.
        let a = vec![0.0, 1.0, 2.0];
        let b = vec![0.1, 1.1, 2.1];
        let c = vec![0.0, f64::NAN, 2.0];
        let refs: Vec<&[f64]> = vec![&a, &b, &c];
        let table = PrefixNnTable::build(&refs).unwrap();
        for l in 1..=3 {
            for i in 0..3 {
                assert!(table.nn(l, i) < 3, "nn must be a valid index");
            }
            let rnn = table.rnn_sets(l);
            assert_eq!(rnn.iter().map(Vec::len).sum::<usize>(), 3);
        }
        // The clean pair prefers each other once the NaN taints c's
        // distances (from t=2 on, c's accumulated distance is NaN).
        assert_eq!(table.nn(3, 0), 1);
        assert_eq!(table.nn(3, 1), 0);
    }

    #[test]
    fn nearest_prefix_truncates_training_series() {
        let t0 = vec![0.0, 0.0, 99.0];
        let t1 = vec![5.0, 5.0, 5.0];
        let train: Vec<&[f64]> = vec![&t0, &t1];
        // Query of length 2 ignores the diverging 3rd point of t0.
        let (idx, d) = nearest_prefix(&train, &[0.1, 0.1]).unwrap();
        assert_eq!(idx, 0);
        assert!((d - 0.02).abs() < 1e-12);
    }

    #[test]
    fn nearest_prefix_tie_prefers_lowest_index() {
        let t0 = vec![1.0];
        let t1 = vec![1.0];
        let train: Vec<&[f64]> = vec![&t0, &t1];
        assert_eq!(nearest_prefix(&train, &[1.0]).unwrap().0, 0);
    }

    #[test]
    fn nearest_prefix_error_paths() {
        let train: Vec<&[f64]> = vec![];
        assert!(nearest_prefix(&train, &[1.0]).is_err());
        let t0 = vec![1.0];
        let train: Vec<&[f64]> = vec![&t0];
        assert!(nearest_prefix(&train, &[]).is_err());
        assert!(nearest_prefix(&train, &[1.0, 2.0]).is_err());
    }
}
