//! Random forest: bootstrap-aggregated CART trees with feature subsampling.
//!
//! Probabilities are the average of the member trees' leaf distributions
//! (soft voting), which gives ECONOMY-K the calibrated per-time-point
//! posteriors its cost function needs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::classifier::{validate_training, Classifier};
use crate::error::MlError;
use crate::linalg::Matrix;
use crate::tree::{DecisionTree, TreeConfig};

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration template (its `max_features`/`seed` are
    /// overridden per member).
    pub tree: TreeConfig,
    /// RNG seed (bootstrap sampling + per-tree seeds).
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 25,
            tree: TreeConfig {
                max_depth: 10,
                ..TreeConfig::default()
            },
            seed: 13,
        }
    }
}

/// Random-forest classifier with soft voting.
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
    n_features: usize,
    n_classes: usize,
}

impl RandomForest {
    /// Untrained forest with the given hyper-parameters.
    pub fn new(config: ForestConfig) -> Self {
        RandomForest {
            config,
            trees: Vec::new(),
            n_features: 0,
            n_classes: 0,
        }
    }

    /// Untrained forest with defaults (25 trees, depth 10, sqrt features).
    pub fn with_defaults() -> Self {
        Self::new(ForestConfig::default())
    }

    /// Number of fitted member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_training(x, y, n_classes)?;
        if self.config.n_trees == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_trees",
                message: "must be positive".into(),
            });
        }
        let n = x.rows();
        let d = x.cols();
        let max_features = (d as f64).sqrt().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.trees.clear();
        for t in 0..self.config.n_trees {
            // Bootstrap sample with replacement.
            let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            let rows: Vec<Vec<f64>> = idx.iter().map(|&i| x.row(i).to_vec()).collect();
            let yb: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
            let xb = Matrix::from_rows(&rows)?;
            let mut tree = DecisionTree::new(TreeConfig {
                max_features: Some(max_features),
                seed: self.config.seed.wrapping_add(t as u64 * 7919),
                ..self.config.tree.clone()
            });
            tree.fit(&xb, &yb, n_classes)?;
            self.trees.push(tree);
        }
        self.n_features = d;
        self.n_classes = n_classes;
        Ok(())
    }

    fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let mut probs = vec![0.0; self.n_classes];
        for tree in &self.trees {
            let p = tree.predict_proba(x)?;
            for (acc, v) in probs.iter_mut().zip(p) {
                *acc += v;
            }
        }
        let scale = 1.0 / self.trees.len() as f64;
        for p in &mut probs {
            *p *= scale;
        }
        Ok(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data() -> (Matrix, Vec<usize>) {
        // Class 0 inside a ring, class 1 outside: needs a non-linear model.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = i as f64 * 0.157;
            rows.push(vec![0.3 * a.cos(), 0.3 * a.sin()]);
            y.push(0);
            rows.push(vec![2.0 * a.cos(), 2.0 * a.sin()]);
            y.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn fits_nonlinear_rings() {
        let (x, y) = ring_data();
        let mut f = RandomForest::with_defaults();
        f.fit(&x, &y, 2).unwrap();
        let acc = f
            .predict_batch(&x)
            .unwrap()
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "forest train accuracy {acc}");
    }

    #[test]
    fn probabilities_average_to_one() {
        let (x, y) = ring_data();
        let mut f = RandomForest::with_defaults();
        f.fit(&x, &y, 2).unwrap();
        let p = f.predict_proba(&[0.1, 0.1]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = ring_data();
        let mut a = RandomForest::with_defaults();
        let mut b = RandomForest::with_defaults();
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(
            a.predict_proba(&[1.0, 0.0]).unwrap(),
            b.predict_proba(&[1.0, 0.0]).unwrap()
        );
    }

    #[test]
    fn zero_trees_rejected() {
        let (x, y) = ring_data();
        let mut f = RandomForest::new(ForestConfig {
            n_trees: 0,
            ..ForestConfig::default()
        });
        assert!(f.fit(&x, &y, 2).is_err());
    }

    #[test]
    fn unfitted_error() {
        let f = RandomForest::with_defaults();
        assert!(matches!(f.predict_proba(&[0.0]), Err(MlError::NotFitted)));
    }
}
