//! Property-based tests of the ML substrate's numerical invariants.

use proptest::prelude::*;

use etsc_ml::bayes::GaussianNb;
use etsc_ml::kmeans::{KMeans, KMeansConfig};
use etsc_ml::knn::{nearest_prefix, PrefixNnTable};
use etsc_ml::linalg::{cholesky, solve_spd, Matrix};
use etsc_ml::logistic::softmax;
use etsc_ml::{Classifier, MlError};

proptest! {
    #[test]
    fn cholesky_reconstructs_spd_matrices(
        entries in prop::collection::vec(-2f64..2.0, 9),
    ) {
        // Build SPD as BᵀB + I from a random 3x3 B.
        let b = Matrix::from_vec(3, 3, entries).unwrap();
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let l = cholesky(&a).unwrap();
        // L·Lᵀ == A
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(i, k)] * l[(j, k)];
                }
                prop_assert!((s - a[(i, j)]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn spd_solve_satisfies_the_system(
        entries in prop::collection::vec(-2f64..2.0, 9),
        rhs in prop::collection::vec(-5f64..5.0, 3),
    ) {
        let b = Matrix::from_vec(3, 3, entries).unwrap();
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let x = solve_spd(&a, &rhs).unwrap();
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&rhs) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn softmax_invariant_to_constant_shift(
        logits in prop::collection::vec(-20f64..20.0, 2..6),
        shift in -100f64..100.0,
    ) {
        let a = softmax(&logits);
        let shifted: Vec<f64> = logits.iter().map(|v| v + shift).collect();
        let b = softmax(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn kmeans_centroids_lie_in_data_hull_bounds(
        points in prop::collection::vec((-50f64..50.0, -50f64..50.0), 4..40),
        k in 1usize..4,
    ) {
        let rows: Vec<Vec<f64>> = points.iter().map(|&(x, y)| vec![x, y]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut km = KMeans::new(KMeansConfig { k, seed: 3, ..KMeansConfig::default() });
        km.fit(&x).unwrap();
        let (min_x, max_x) = points
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &(px, _)| (lo.min(px), hi.max(px)));
        for c in km.centroids() {
            prop_assert!(c[0] >= min_x - 1e-9 && c[0] <= max_x + 1e-9);
        }
        // Assignment returns a valid cluster id for every training point.
        for r in &rows {
            prop_assert!(km.assign(r).unwrap() < km.k());
        }
    }

    #[test]
    fn nearest_prefix_agrees_with_full_scan(
        series in prop::collection::vec(
            prop::collection::vec(-10f64..10.0, 6),
            2..10,
        ),
        qlen in 1usize..6,
    ) {
        let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let query = &series[0][..qlen];
        let (idx, d) = nearest_prefix(&refs, query).unwrap();
        // Brute force.
        let mut best = (0usize, f64::INFINITY);
        for (j, s) in series.iter().enumerate() {
            let dd: f64 = s[..qlen]
                .iter()
                .zip(query)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if dd < best.1 {
                best = (j, dd);
            }
        }
        prop_assert_eq!(idx, best.0);
        prop_assert!((d - best.1).abs() < 1e-9);
    }

    #[test]
    fn prefix_nn_table_is_self_consistent(
        series in prop::collection::vec(
            prop::collection::vec(-10f64..10.0, 5),
            3..8,
        ),
    ) {
        let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let table = PrefixNnTable::build(&refs).unwrap();
        for l in 1..=5 {
            let rnn = table.rnn_sets(l);
            // Every series appears in exactly one RNN set.
            let total: usize = rnn.iter().map(|r| r.len()).sum();
            prop_assert_eq!(total, series.len());
            for (i, members) in rnn.iter().enumerate() {
                for &j in members {
                    prop_assert_eq!(table.nn(l, j), i);
                }
            }
        }
    }

    #[test]
    fn gaussian_nb_probabilities_are_valid(
        features in prop::collection::vec((-10f64..10.0, -10f64..10.0), 6..30),
        query in (-10f64..10.0, -10f64..10.0),
    ) {
        let rows: Vec<Vec<f64>> = features.iter().map(|&(a, b)| vec![a, b]).collect();
        let y: Vec<usize> = (0..rows.len()).map(|i| i % 2).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y, 2).unwrap();
        let p = nb.predict_proba(&[query.0, query.1]).unwrap();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

#[test]
fn matrix_error_paths() {
    assert!(matches!(
        Matrix::from_vec(2, 2, vec![1.0]),
        Err(MlError::DimensionMismatch { .. })
    ));
    let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
    assert!(cholesky(&a).is_err(), "indefinite matrix must fail");
}
