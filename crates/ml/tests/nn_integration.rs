//! Integration tests of the neural substrate: MLSTM-FCN on multivariate
//! inputs, inference-mode stability, and optimiser behaviour.

use etsc_ml::linalg::Matrix;
use etsc_ml::nn::{MlstmFcn, MlstmFcnConfig};

fn multivariate_toy() -> (Vec<Matrix>, Vec<usize>) {
    // Class 0: channel 0 leads channel 1; class 1: reversed.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..14 {
        let phase = i as f64 * 0.41;
        let lead: Vec<f64> = (0..20).map(|t| ((t as f64 * 0.6) + phase).sin()).collect();
        let lag: Vec<f64> = (0..20)
            .map(|t| ((t as f64 * 0.6) + phase - 1.0).sin())
            .collect();
        xs.push(Matrix::from_rows(&[lead.clone(), lag.clone()]).unwrap());
        ys.push(0);
        xs.push(Matrix::from_rows(&[lag, lead]).unwrap());
        ys.push(1);
    }
    (xs, ys)
}

fn small_config() -> MlstmFcnConfig {
    MlstmFcnConfig {
        filters: [4, 8, 4],
        lstm_cells: 4,
        epochs: 50,
        batch_size: 8,
        dropout: 0.1,
        ..MlstmFcnConfig::default()
    }
}

#[test]
fn learns_channel_order_on_multivariate_input() {
    let (xs, ys) = multivariate_toy();
    let mut net = MlstmFcn::new(small_config());
    net.fit(&xs, &ys, 2).unwrap();
    let correct = xs
        .iter()
        .zip(&ys)
        .filter(|(x, &y)| net.predict(x).unwrap() == y)
        .count();
    assert!(
        correct as f64 / ys.len() as f64 > 0.85,
        "{correct}/{}",
        ys.len()
    );
}

#[test]
fn inference_is_pure() {
    // predict_proba must not mutate state: repeated calls agree exactly.
    let (xs, ys) = multivariate_toy();
    let mut net = MlstmFcn::new(small_config());
    net.fit(&xs, &ys, 2).unwrap();
    let a = net.predict_proba(&xs[0]).unwrap();
    let b = net.predict_proba(&xs[0]).unwrap();
    assert_eq!(a, b);
    // Predicting another sample in between must not leak state either.
    let _ = net.predict_proba(&xs[5]).unwrap();
    let c = net.predict_proba(&xs[0]).unwrap();
    assert_eq!(a, c);
}

#[test]
fn dimension_shuffle_flag_changes_the_model() {
    let (xs, ys) = multivariate_toy();
    let mut shuffled = MlstmFcn::new(MlstmFcnConfig {
        dimension_shuffle: true,
        ..small_config()
    });
    let mut plain = MlstmFcn::new(MlstmFcnConfig {
        dimension_shuffle: false,
        ..small_config()
    });
    shuffled.fit(&xs, &ys, 2).unwrap();
    plain.fit(&xs, &ys, 2).unwrap();
    // Different architectures produce different probability surfaces.
    let a = shuffled.predict_proba(&xs[0]).unwrap();
    let b = plain.predict_proba(&xs[0]).unwrap();
    assert_ne!(a, b);
}

#[test]
fn zero_dropout_configuration_works() {
    let (xs, ys) = multivariate_toy();
    let mut net = MlstmFcn::new(MlstmFcnConfig {
        dropout: 0.0,
        ..small_config()
    });
    net.fit(&xs, &ys, 2).unwrap();
    let p = net.predict_proba(&xs[1]).unwrap();
    assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn three_class_output_head() {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..10 {
        let j = (i as f64 * 0.31).sin() * 0.1;
        for (c, level) in [(0usize, 0.0), (1, 1.5), (2, 3.0)] {
            let row: Vec<f64> = (0..16)
                .map(|t| level + j + (t as f64 * 0.4).sin() * 0.2)
                .collect();
            xs.push(Matrix::from_rows(&[row]).unwrap());
            ys.push(c);
        }
    }
    let mut net = MlstmFcn::new(small_config());
    net.fit(&xs, &ys, 3).unwrap();
    let correct = xs
        .iter()
        .zip(&ys)
        .filter(|(x, &y)| net.predict(x).unwrap() == y)
        .count();
    assert!(
        correct as f64 / ys.len() as f64 > 0.85,
        "{correct}/{}",
        ys.len()
    );
}
