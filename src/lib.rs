//! # etsc — Early Time-Series Classification framework
//!
//! A Rust reproduction of *"A Framework to Evaluate Early Time-Series
//! Classification Algorithms"* (EDBT 2024): the five evaluated ETSC
//! algorithms (ECEC, ECONOMY-K, ECTS, EDSC, TEASER), the proposed STRUT
//! truncation baseline over three full-TSC models (WEASEL/WEASEL+MUSE,
//! MiniROCKET, MLSTM-FCN), the twelve evaluation datasets as synthetic
//! generators, and the complete evaluation harness (metrics, stratified
//! cross-validation, per-category aggregation, online-feasibility
//! analysis).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`data`] — series/dataset containers, loaders, CV, categories;
//! * [`ml`] — from-scratch classifiers, clusterers and neural layers;
//! * [`transforms`] — DFT, SFA/WEASEL bags, MiniROCKET kernels;
//! * [`datasets`] — the 12 paper datasets as scaled generators;
//! * [`core`] — the ETSC algorithms and full-TSC models;
//! * [`eval`] — the experiment harness behind every table and figure;
//! * [`obs`] — span/event tracing and the metrics registry + exporters;
//! * [`serve`] — streaming inference: model store, sessions, scheduler;
//! * [`net`] — the network edge: binary wire protocol, TCP server,
//!   client library, and the socketed load generator;
//! * [`adapt`] — online adaptation: label feedback, drift detection,
//!   and hot-swapped refits with rollback.
//!
//! ## Quickstart
//!
//! ```
//! use etsc::core::{EarlyClassifier, Teaser, TeaserConfig};
//! use etsc::datasets::{GenOptions, PaperDataset};
//!
//! // A small PowerCons-like dataset.
//! let data = PaperDataset::PowerCons.generate(GenOptions {
//!     height_scale: 0.12,
//!     length_scale: 0.25,
//!     seed: 7,
//! });
//! let mut teaser = Teaser::new(TeaserConfig { s_prefixes: 5, ..TeaserConfig::default() });
//! teaser.fit(&data).unwrap();
//! let prediction = teaser.predict_early(data.instance(0)).unwrap();
//! assert!(prediction.prefix_len <= data.instance(0).len());
//! ```

pub use etsc_adapt as adapt;
pub use etsc_core as core;
pub use etsc_data as data;
pub use etsc_datasets as datasets;
pub use etsc_eval as eval;
pub use etsc_ml as ml;
pub use etsc_net as net;
pub use etsc_obs as obs;
pub use etsc_serve as serve;
pub use etsc_transforms as transforms;
