//! Drug-discovery scenario (paper Sections 1, 5.2 and 6.3): large-scale
//! tumour-treatment simulations are expensive; terminating the
//! *non-interesting* ones early frees compute for promising regions of
//! the treatment space.
//!
//! This example trains an early classifier on simulated runs, then
//! monitors a batch of fresh simulations step-by-step, killing each one
//! the moment the classifier (early-)predicts it non-interesting. It
//! reports how much simulated compute the early terminations saved and
//! how many truly interesting runs were killed by mistake.
//!
//! ```text
//! cargo run --release --example drug_simulation
//! ```

use etsc::core::{EarlyClassifier, Ecec, EcecConfig, VotingAdapter};
use etsc::data::train_validation_split;
use etsc::datasets::{GenOptions, PaperDataset};

fn main() {
    let data = PaperDataset::Biological.generate(GenOptions {
        height_scale: 0.5,
        length_scale: 1.0,
        seed: 2024,
    });
    let horizon = data.max_len();
    let non_interesting = data
        .class_names()
        .iter()
        .position(|c| c == "non-interesting")
        .expect("class exists");
    println!(
        "{} simulated treatment runs, {} time points each ({}% interesting)",
        data.len(),
        horizon,
        100 * data.class_counts()[1 - non_interesting] / data.len()
    );

    // Train on a stratified 70%, monitor the held-out 30%.
    let (train_idx, test_idx) = train_validation_split(&data, 0.3, 5).expect("valid split");
    let train = data.subset(&train_idx);
    // The Biological dataset is 3-variate; ECEC is univariate → voting.
    // ECEC's confidence thresholds favour accuracy (alpha = 0.8), which
    // protects interesting runs from premature termination.
    let mut clf = VotingAdapter::new(|| {
        Ecec::new(EcecConfig {
            n_prefixes: 10,
            cv_folds: 3,
            ..EcecConfig::default()
        })
    });
    clf.fit(&train).expect("training succeeds");

    let mut saved_steps = 0usize;
    let mut total_steps = 0usize;
    let mut killed_correctly = 0usize;
    let mut killed_wrongly = 0usize;
    let mut completed = 0usize;
    let mut non_interesting_total = 0usize;

    for &i in &test_idx {
        let inst = data.instance(i);
        let truth = data.label(i);
        if truth == non_interesting {
            non_interesting_total += 1;
        }
        total_steps += horizon;
        // Stream the simulation step by step.
        let mut stream = clf.start_stream().expect("fitted");
        let mut killed_at = None;
        for t in 1..=inst.len() {
            let prefix = inst.prefix(t).expect("valid prefix");
            if let Some(label) = stream.observe(&prefix, t == inst.len()).expect("observe") {
                if label == non_interesting && t < inst.len() {
                    killed_at = Some(t);
                }
                break;
            }
        }
        match killed_at {
            Some(t) => {
                saved_steps += horizon - t;
                if truth == non_interesting {
                    killed_correctly += 1;
                } else {
                    killed_wrongly += 1;
                }
            }
            None => completed += 1,
        }
    }

    println!("\nmonitored {} fresh simulations:", test_idx.len());
    println!("  terminated early (correctly):   {killed_correctly}");
    println!("  terminated early (wrongly):     {killed_wrongly}");
    println!("  ran to completion:              {completed}");
    println!(
        "  non-interesting identified early: {:.1}% (paper reports 65%)",
        100.0 * killed_correctly as f64 / non_interesting_total.max(1) as f64
    );
    println!(
        "  simulated compute saved:        {:.1}% of {} total steps",
        100.0 * saved_steps as f64 / total_steps as f64,
        total_steps
    );
}
