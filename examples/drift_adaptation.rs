//! Drift as an evaluation axis: the same seeded drift stream replayed
//! through a frozen early classifier and through an
//! [`Adapter`](etsc::adapt::Adapter)-supervised one, for each drift
//! shape (step, gradual, recurring).
//!
//! Both arms start from byte-identical copies of a model trained on the
//! leading 30% of the stream; the adaptive arm additionally receives
//! label feedback, watches it with a DDM monitor, and hot-swaps refits
//! trained on its recency-biased reservoir.
//!
//! ```text
//! cargo run --release --example drift_adaptation
//! ```

use etsc::adapt::{adaptive_vs_frozen, AdapterConfig, CompareOptions, DetectorKind};
use etsc::datasets::{drift_stream, DriftKind, DriftOptions, GenOptions, PaperDataset};
use etsc::eval::experiment::AlgoSpec;

fn main() {
    let shapes: [(&str, DriftKind); 3] = [
        ("step@0.5", DriftKind::Step { at: 0.5 }),
        ("gradual 0.4→0.8", DriftKind::Gradual { from: 0.4, to: 0.8 }),
        ("recurring p=60", DriftKind::Recurring { period: 60 }),
    ];

    println!("adaptive vs frozen — ECTS on a PowerCons-like stream, 240 sessions, labels rotated by 1 after the change\n");
    println!(
        "{:<16} {:>8} {:>10} {:>6} {:>6} {:>6} {:>9} {:>4}",
        "drift", "frozen", "adaptive", "drift", "refit", "swap", "rollback", "gen"
    );

    for (name, kind) in shapes {
        let stream = drift_stream(
            PaperDataset::PowerCons,
            &DriftOptions {
                kind,
                n: 240,
                rotate: 1,
                gen: GenOptions {
                    height_scale: 0.1,
                    length_scale: 0.2,
                    seed: 13,
                },
            },
        );
        let outcome = adaptive_vs_frozen(
            AlgoSpec::Ects,
            &stream,
            &CompareOptions {
                adapter: AdapterConfig {
                    detector: DetectorKind::Ddm,
                    // A tight reservoir keeps the refit sample dominated
                    // by the concept that is live when the drift fires.
                    reservoir_cap: 32,
                    min_refit_examples: 16,
                    rollback_window: 16,
                    ..AdapterConfig::default()
                },
                ..CompareOptions::default()
            },
        )
        .expect("adaptive-vs-frozen cell");

        println!(
            "{:<16} {:>8.3} {:>10.3} {:>6} {:>6} {:>6} {:>9} {:>4}",
            name,
            outcome.frozen.accuracy,
            outcome.adaptive.accuracy,
            outcome.drifts,
            outcome.refits,
            outcome.swaps,
            outcome.rollbacks,
            outcome.final_generation,
        );
    }

    println!("\naccuracy is over the evaluation tail (the 70% of the stream after the shared training head).");
}
