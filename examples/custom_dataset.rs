//! Framework extensibility (paper Section 5.5): bring your own dataset in
//! the framework's CSV interchange format (one row per variable of one
//! instance; the first field is the class label) and evaluate any
//! algorithm on it.
//!
//! The example writes a small synthetic CSV, loads it back through the
//! framework's loader (including the missing-value imputation path), and
//! trains EDSC on it.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use std::io::Cursor;

use etsc::core::{EarlyClassifier, Edsc};
use etsc::data::impute::impute_dataset;
use etsc::data::loader::{read_csv, write_csv};
use etsc::data::{DatasetBuilder, MultiSeries, Series};

fn main() {
    // 1. Build a toy dataset in memory: a "spike" class and a "flat" class,
    //    with a couple of missing values to exercise the imputation rule.
    let mut b = DatasetBuilder::new("my-sensor-data");
    for i in 0..10 {
        let jitter = (i as f64 * 0.7).sin() * 0.05;
        let mut spike = vec![jitter; 24];
        for (k, v) in [1.0, 3.5, 5.0, 3.5, 1.0].iter().enumerate() {
            spike[6 + k] = *v;
        }
        if i == 0 {
            spike[3] = f64::NAN; // a sensor dropout
        }
        let flat: Vec<f64> = (0..24)
            .map(|t| 0.2 * (t as f64 * 0.5).sin() + jitter)
            .collect();
        b.push_named(MultiSeries::univariate(Series::new(spike)), "spike");
        b.push_named(MultiSeries::univariate(Series::new(flat)), "flat");
    }
    let original = b.build().expect("valid dataset");

    // 2. Export to the framework's CSV format...
    let mut csv = Vec::new();
    write_csv(&original, &mut csv).expect("serialises");
    println!(
        "exported {} instances to CSV ({} bytes)",
        original.len(),
        csv.len()
    );

    // 3. ...load it back and impute the gaps (Section 5.1's rule).
    let loaded = read_csv(Cursor::new(csv), "my-sensor-data", 1).expect("parses");
    let (clean, imputed) = impute_dataset(&loaded).expect("imputes");
    println!(
        "loaded {} instances; imputed {imputed} missing values",
        clean.len()
    );

    // 4. Train EDSC and early-classify the training set.
    let mut edsc = Edsc::with_defaults();
    edsc.fit(&clean).expect("training succeeds");
    println!("EDSC learned {} shapelets", edsc.shapelets().len());
    let mut correct = 0;
    let mut prefix_sum = 0;
    for (inst, label) in clean.iter() {
        let p = edsc.predict_early(inst).expect("predicts");
        if p.label == label {
            correct += 1;
        }
        prefix_sum += p.prefix_len;
    }
    println!(
        "train accuracy {:.2}, mean earliness {:.2}",
        correct as f64 / clean.len() as f64,
        prefix_sum as f64 / (clean.len() * clean.max_len()) as f64
    );
}
