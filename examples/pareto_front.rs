//! MOO-ETSC (paper future work): evolve ECEC configurations toward the
//! accuracy/earliness Pareto front with NSGA-II, instead of collapsing
//! the trade-off into a single harmonic mean.
//!
//! ```text
//! cargo run --release --example pareto_front
//! ```

use etsc::core::{EarlyClassifier, Ecec, EcecConfig};
use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::moo::{optimize, MooConfig};

fn main() {
    let data = PaperDataset::DodgerLoopGame.generate(GenOptions {
        height_scale: 0.6,
        length_scale: 0.25,
        seed: 17,
    });
    println!(
        "optimising ECEC(alpha, N) on {} ({} instances x {} points)\n",
        data.name(),
        data.len(),
        data.max_len()
    );

    // Genes: [alpha in (0,1), n_prefixes in 2..12].
    let bounds = [(0.05, 0.95), (2.0, 12.0)];
    let build = |genes: &[f64]| -> Box<dyn EarlyClassifier> {
        Box::new(Ecec::new(EcecConfig {
            alpha: genes[0],
            n_prefixes: genes[1].round() as usize,
            cv_folds: 2,
            ..EcecConfig::default()
        }))
    };
    let result = optimize(
        &data,
        &bounds,
        build,
        &MooConfig {
            population: 10,
            generations: 4,
            ..MooConfig::default()
        },
    )
    .expect("optimisation succeeds");

    println!(
        "evaluated {} configurations; Pareto front ({} points):\n",
        result.evaluated,
        result.front.len()
    );
    println!(
        "{:<8}{:<6}{:>10}{:>11}{:>9}",
        "alpha", "N", "accuracy", "earliness", "HM"
    );
    for ind in &result.front {
        println!(
            "{:<8.2}{:<6}{:>10.3}{:>11.3}{:>9.3}",
            ind.genes[0],
            ind.genes[1].round() as usize,
            ind.metrics.accuracy,
            ind.metrics.earliness,
            ind.metrics.harmonic_mean
        );
    }
    println!("\nEach row is non-dominated: no configuration is both more accurate and earlier.");
}
