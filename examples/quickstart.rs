//! Quickstart: train an early classifier and classify a stream before it
//! completes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use etsc::core::{EarlyClassifier, Teaser, TeaserConfig};
use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::metrics::{EvalOutcome, Metrics};

fn main() {
    // 1. A PowerCons-like dataset (reduced size for the example).
    let data = PaperDataset::PowerCons.generate(GenOptions {
        height_scale: 0.3,
        length_scale: 0.5,
        seed: 42,
    });
    println!(
        "dataset: {} — {} instances, {} points each, classes {:?}",
        data.name(),
        data.len(),
        data.max_len(),
        data.class_names()
    );

    // 2. Split off a test set (last 20 instances).
    let n = data.len();
    let train_idx: Vec<usize> = (0..n - 20).collect();
    let test_idx: Vec<usize> = (n - 20..n).collect();
    let train = data.subset(&train_idx);

    // 3. Train TEASER (WEASEL slaves + one-class SVM masters).
    let mut teaser = Teaser::new(TeaserConfig {
        s_prefixes: 8,
        ..TeaserConfig::default()
    });
    teaser.fit(&train).expect("training succeeds");
    println!(
        "TEASER trained: consistency window v = {}, prefixes {:?}",
        teaser.v(),
        teaser.prefix_lengths()
    );

    // 4. Early-classify the held-out instances.
    let mut outcomes = Vec::new();
    for &i in &test_idx {
        let inst = data.instance(i);
        let p = teaser.predict_early(inst).expect("prediction succeeds");
        println!(
            "instance {i}: true = {}, predicted = {} after {}/{} points",
            data.class_names()[data.label(i)],
            data.class_names()[p.label],
            p.prefix_len,
            inst.len()
        );
        outcomes.push(EvalOutcome {
            truth: data.label(i),
            predicted: p.label,
            prefix_len: p.prefix_len,
            full_len: inst.len(),
        });
    }
    let m = Metrics::compute(&outcomes, data.n_classes());
    println!(
        "\naccuracy {:.3} | earliness {:.3} | harmonic mean {:.3}",
        m.accuracy, m.earliness, m.harmonic_mean
    );
}
