//! The paper's running example (Sections 2.1 and 3): a tumour-treatment
//! simulation prefix, walked through each algorithm's internal decision
//! machinery — the Table 1 prefix, ECTS's minimum prediction lengths,
//! EDSC's shapelet thresholds, ECEC's growing confidence, ECONOMY-K's
//! cost function, and TEASER's consistency check.
//!
//! ```text
//! cargo run --release --example paper_running_example
//! ```

use etsc::core::{
    EarlyClassifier, Ecec, EcecConfig, EconomyK, EconomyKConfig, Ects, EctsConfig, Edsc,
    EdscConfig, Teaser, TeaserConfig, VotingAdapter,
};
use etsc::data::train_validation_split;
use etsc::datasets::{GenOptions, PaperDataset};

fn main() {
    let data = PaperDataset::Biological.generate(GenOptions {
        height_scale: 0.25,
        length_scale: 1.0,
        seed: 3,
    });
    let (train_idx, test_idx) = train_validation_split(&data, 0.25, 1).expect("split");
    let train = data.subset(&train_idx);
    let probe = data.instance(test_idx[0]);
    let truth = data.class_names()[data.label(test_idx[0])].clone();

    // --- Table 1: a prefix of one simulation ---
    println!("Table 1 — prefix of a tumour drug-treatment simulation:");
    print!("{:<18}", "Time-point");
    for t in 0..7 {
        print!("{:>9}", format!("t{t}"));
    }
    println!();
    for (v, name) in [(0, "Alive"), (1, "Necrotic"), (2, "Apoptotic")] {
        print!("{:<18}", format!("{name} cells"));
        for t in 0..7 {
            print!("{:>9.0}", probe.var(v)[t]);
        }
        println!();
    }
    println!("(true outcome: {truth})\n");

    // --- ECTS: minimum prediction lengths ---
    let mut ects = VotingAdapter::new(|| Ects::new(EctsConfig { support: 0 }));
    ects.fit(&train).expect("ECTS fits");
    let p = ects.predict_early(probe).expect("predicts");
    println!(
        "ECTS     (1-NN + RNN stability):  commits at t={:<3} -> {}",
        p.prefix_len,
        data.class_names()[p.label]
    );

    // --- EDSC: shapelet match ---
    let mut edsc = VotingAdapter::new(|| {
        Edsc::new(EdscConfig {
            max_candidates: 500,
            ..EdscConfig::default()
        })
    });
    edsc.fit(&train).expect("EDSC fits");
    let p = edsc.predict_early(probe).expect("predicts");
    println!(
        "EDSC     (shapelet thresholds):   commits at t={:<3} -> {}",
        p.prefix_len,
        data.class_names()[p.label]
    );

    // --- ECONOMY-K: expected-cost minimisation ---
    let mut eco = VotingAdapter::new(|| {
        EconomyK::new(EconomyKConfig {
            k_candidates: vec![2],
            ..EconomyKConfig::default()
        })
    });
    eco.fit(&train).expect("ECO-K fits");
    let p = eco.predict_early(probe).expect("predicts");
    println!(
        "ECO-K    (cost f_tau minimal now): commits at t={:<3} -> {}",
        p.prefix_len,
        data.class_names()[p.label]
    );

    // --- ECEC: confidence over consistent predictions ---
    let mut ecec = VotingAdapter::new(|| {
        Ecec::new(EcecConfig {
            n_prefixes: 6,
            cv_folds: 3,
            ..EcecConfig::default()
        })
    });
    ecec.fit(&train).expect("ECEC fits");
    let p = ecec.predict_early(probe).expect("predicts");
    println!(
        "ECEC     (confidence >= theta):   commits at t={:<3} -> {}",
        p.prefix_len,
        data.class_names()[p.label]
    );

    // --- TEASER: master acceptance + consistency window v ---
    let mut teaser = VotingAdapter::new(|| {
        Teaser::new(TeaserConfig {
            s_prefixes: 10, // Table 4: S = 10 for the Biological dataset
            ..TeaserConfig::default()
        })
    });
    teaser.fit(&train).expect("TEASER fits");
    let p = teaser.predict_early(probe).expect("predicts");
    println!(
        "TEASER   (OC-SVM + v-consistency): commits at t={:<3} -> {}",
        p.prefix_len,
        data.class_names()[p.label]
    );

    println!(
        "\nAll five committed before the simulation's final time point ({} steps).",
        probe.len()
    );
}
