//! Head-to-head comparison of the framework's algorithms on one dataset,
//! printing the per-algorithm rows the paper's supplementary tables
//! report: accuracy, F1, earliness, harmonic mean, and timings.
//!
//! ```text
//! cargo run --release --example algorithm_comparison [dataset]
//! ```
//!
//! `dataset` is any paper dataset name (default: DodgerLoopGame).

use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::experiment::{run_cell, AlgoSpec, RunConfig};
use etsc::obs::Obs;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "DodgerLoopGame".into());
    let Some(ds) = PaperDataset::by_name(&name) else {
        eprintln!("unknown dataset {name:?}; options:");
        for d in PaperDataset::ALL {
            eprintln!("  {}", d.spec().name);
        }
        std::process::exit(2);
    };
    let spec = ds.spec();
    let data = ds.generate(GenOptions {
        height_scale: (120.0 / spec.height as f64).min(1.0),
        length_scale: (64.0 / spec.length as f64).min(1.0),
        seed: 9,
    });
    println!(
        "dataset {} (scaled to {} x {} x {}), 3-fold stratified CV\n",
        spec.name,
        data.len(),
        data.vars(),
        data.max_len()
    );
    println!(
        "{:<10}{:>10}{:>10}{:>11}{:>9}{:>12}{:>12}",
        "Algorithm", "Accuracy", "F1", "Earliness", "HM", "Train (s)", "Test (ms)"
    );
    let config = RunConfig::fast();
    for algo in AlgoSpec::ALL {
        match run_cell(algo, &data, &config, &Obs::disabled()) {
            Ok(r) => match r.metrics {
                Some(m) => println!(
                    "{:<10}{:>10.3}{:>10.3}{:>11.3}{:>9.3}{:>12.2}{:>12.3}",
                    algo.name(),
                    m.accuracy,
                    m.f1,
                    m.earliness,
                    m.harmonic_mean,
                    r.train_secs,
                    r.test_secs_per_instance * 1000.0
                ),
                None => println!("{:<10}{:>10}", algo.name(), "DNF"),
            },
            Err(e) => println!("{:<10}  error: {e}", algo.name()),
        }
    }
}
