//! Maritime situational awareness (paper Sections 1 and 5.3): predict,
//! from a vessel's live position stream, whether it will be inside the
//! port of Brest by the end of the 30-minute window — early enough for
//! port authorities to plan berth and traffic operations.
//!
//! The example trains ECTS (wrapped by the voting adapter for the
//! 7-variable AIS signal) and then replays test trajectories one
//! minute-by-minute observation at a time, printing the moment the
//! classifier commits.
//!
//! ```text
//! cargo run --release --example maritime_monitoring
//! ```

use etsc::core::{EarlyClassifier, Ects, EctsConfig, VotingAdapter};
use etsc::data::train_validation_split;
use etsc::datasets::{GenOptions, PaperDataset};

fn main() {
    let data = PaperDataset::Maritime.generate(GenOptions {
        height_scale: 0.004, // ~320 of the 80 591 windows
        length_scale: 1.0,
        seed: 7,
    });
    println!(
        "{} trajectory windows, {} minutes each, classes {:?}",
        data.len(),
        data.max_len(),
        data.class_names()
    );

    // Stratified 80/20 split so both outcomes appear in the test set.
    let (train_idx, test_idx) = train_validation_split(&data, 0.2, 11).expect("valid split");
    let train = data.subset(&train_idx);
    let mut clf = VotingAdapter::new(|| Ects::new(EctsConfig { support: 0 }));
    clf.fit(&train).expect("training succeeds");
    println!("ECTS voting ensemble trained on {} windows\n", train.len());

    let mut correct = 0usize;
    let mut minutes_saved = 0usize;
    let shown = 8.min(test_idx.len());
    for (shown_count, &i) in test_idx.iter().enumerate() {
        let inst = data.instance(i);
        let mut stream = clf.start_stream().expect("fitted");
        let mut committed = None;
        for t in 1..=inst.len() {
            let prefix = inst.prefix(t).expect("valid prefix");
            if let Some(label) = stream.observe(&prefix, t == inst.len()).expect("observe") {
                committed = Some((label, t));
                break;
            }
        }
        let (label, t) = committed.expect("stream always commits");
        if label == data.label(i) {
            correct += 1;
        }
        minutes_saved += inst.len() - t;
        if shown_count < shown {
            println!(
                "vessel window {i}: {} after {t} min (truth: {}) {}",
                data.class_names()[label],
                data.class_names()[data.label(i)],
                if label == data.label(i) { "✓" } else { "✗" }
            );
        }
    }
    let n_test = test_idx.len();
    println!(
        "\naccuracy {:.3} over {n_test} windows; mean lead time {:.1} minutes",
        correct as f64 / n_test as f64,
        minutes_saved as f64 / n_test as f64
    );
}
