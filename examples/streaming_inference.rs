//! Streaming inference end to end: train an early classifier, persist
//! it to the versioned model store, load it back in a fresh "serving
//! process", and replay a synthetic dataset as concurrent streaming
//! sessions — reporting accuracy, latency percentiles and the measured
//! Figure-13 online-feasibility ratio.
//!
//! ```text
//! cargo run --release --example streaming_inference
//! ```

use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::experiment::{AlgoSpec, RunConfig};
use etsc::serve::{
    fit_model, replay_dataset, Backpressure, ReplayOptions, SchedulerConfig, StoredModel,
};

fn main() {
    // 1. A PowerCons-like dataset (reduced size for the example).
    let ds = PaperDataset::PowerCons;
    let data = ds.generate(GenOptions {
        height_scale: 0.2,
        length_scale: 0.4,
        seed: 42,
    });
    println!(
        "dataset: {} — {} instances, {} points each, one observation every {} s",
        data.name(),
        data.len(),
        data.max_len(),
        ds.spec().obs_frequency_secs
    );

    // 2. Train ECTS and persist it, as `etsc train --save` would.
    let config = RunConfig::fast();
    let algo = AlgoSpec::Ects;
    let stored = fit_model(algo, &data, &config).expect("training succeeds");
    let path = std::env::temp_dir().join("streaming_inference_example.etsc");
    stored.save(&path).expect("model saves");
    println!(
        "trained {} and saved it to {} ({} bytes)",
        algo.name(),
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // 3. A serving process starts later: load the artifact — no refit.
    let loaded = StoredModel::load(&path).expect("model loads");
    println!(
        "loaded {} trained on {} ({} classes)",
        loaded.meta.algo.name(),
        loaded.meta.dataset,
        loaded.meta.class_names.len()
    );

    // 4. Replay every instance as a live session: observations arrive
    //    one time point at a time, four workers multiplex the sessions,
    //    and the blocking queue guarantees no observation is lost.
    let outcome = replay_dataset(
        &loaded,
        &data,
        &ReplayOptions {
            obs_frequency_secs: ds.spec().obs_frequency_secs,
            batch: algo.decision_batch(data.max_len(), &config),
            scheduler: SchedulerConfig {
                workers: 4,
                queue_capacity: 256,
                backpressure: Backpressure::Block,
                ..SchedulerConfig::default()
            },
        },
    )
    .expect("replay succeeds");
    println!("{}", outcome.render());

    std::fs::remove_file(&path).ok();
}
