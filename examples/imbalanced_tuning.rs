//! The paper's future-work toolchain on an imbalanced benchmark:
//! T-SMOTE-style oversampling (`etsc::data::augment`) plus MultiETSC-style
//! hyper-parameter tuning (`etsc::eval::tuning`) on the Biological
//! dataset (80/20 imbalance, CIR 4.0).
//!
//! The run compares ECEC's macro-F1 with and without oversampling, then
//! grid-searches its α trade-off parameter.
//!
//! ```text
//! cargo run --release --example imbalanced_tuning
//! ```

use etsc::core::{EarlyClassifier, Ecec, EcecConfig, VotingAdapter};
use etsc::data::augment::{tsmote_oversample, TsmoteConfig};
use etsc::data::stats::DatasetStats;
use etsc::data::{train_validation_split, Dataset};
use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::metrics::{EvalOutcome, Metrics};
use etsc::eval::tuning::{grid_search, Objective};

fn evaluate(train: &Dataset, test: &Dataset) -> Metrics {
    let mut clf = VotingAdapter::new(|| {
        Ecec::new(EcecConfig {
            n_prefixes: 6,
            cv_folds: 3,
            ..EcecConfig::default()
        })
    });
    clf.fit(train).expect("training succeeds");
    let outcomes: Vec<EvalOutcome> = test
        .iter()
        .enumerate()
        .map(|(i, (inst, label))| {
            let p = clf.predict_early(inst).expect("prediction succeeds");
            let _ = i;
            EvalOutcome {
                truth: label,
                predicted: p.label,
                prefix_len: p.prefix_len,
                full_len: inst.len(),
            }
        })
        .collect();
    Metrics::compute(&outcomes, test.n_classes())
}

fn main() {
    let data = PaperDataset::Biological.generate(GenOptions {
        height_scale: 0.4,
        length_scale: 1.0,
        seed: 31,
    });
    let stats = DatasetStats::compute(&data);
    println!(
        "Biological: {} instances, CIR {:.2} (imbalanced)",
        data.len(),
        stats.cir
    );

    let (train_idx, test_idx) = train_validation_split(&data, 0.3, 9).expect("split");
    let train = data.subset(&train_idx);
    let test = data.subset(&test_idx);

    // --- 1. Baseline vs T-SMOTE-balanced training set ---
    let baseline = evaluate(&train, &test);
    let balanced_train =
        tsmote_oversample(&train, &TsmoteConfig::default()).expect("oversampling succeeds");
    println!(
        "T-SMOTE: training set {} -> {} instances (CIR {:.2} -> {:.2})",
        train.len(),
        balanced_train.len(),
        DatasetStats::compute(&train).cir,
        DatasetStats::compute(&balanced_train).cir
    );
    let oversampled = evaluate(&balanced_train, &test);
    println!(
        "\n{:<16}{:>9}{:>9}{:>11}{:>9}",
        "Training set", "Acc", "F1", "Earliness", "HM"
    );
    for (name, m) in [("original", &baseline), ("t-smote", &oversampled)] {
        println!(
            "{name:<16}{:>9.3}{:>9.3}{:>11.3}{:>9.3}",
            m.accuracy, m.f1, m.earliness, m.harmonic_mean
        );
    }

    // --- 2. Grid-search ECEC's alpha on the balanced training data ---
    let grid = [0.5, 0.7, 0.8, 0.9];
    let result = grid_search(
        &balanced_train,
        &grid,
        |&alpha| {
            Box::new(VotingAdapter::new(move || {
                Ecec::new(EcecConfig {
                    alpha,
                    n_prefixes: 6,
                    cv_folds: 3,
                    ..EcecConfig::default()
                })
            }))
        },
        Objective::HarmonicMean,
        3,
        13,
    )
    .expect("grid search succeeds");
    println!("\nalpha grid search (objective: harmonic mean):");
    for t in &result.trials {
        println!(
            "  alpha {:<5} acc {:.3}  f1 {:.3}  earliness {:.3}  hm {:.3}",
            t.params, t.metrics.accuracy, t.metrics.f1, t.metrics.earliness, t.score
        );
    }
    println!(
        "best alpha: {} (hm {:.3})",
        result.best_trial().params,
        result.best_trial().score
    );
}
